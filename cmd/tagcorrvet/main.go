// Command tagcorrvet runs the project's static-analysis suite
// (internal/vet) over the module's packages:
//
//	go run ./cmd/tagcorrvet ./...                    # whole tree
//	go run ./cmd/tagcorrvet ./internal/storm/        # one package
//	go run ./cmd/tagcorrvet -run metricnames ./...   # one analyzer
//	go run ./cmd/tagcorrvet -catalog - ./...         # metric catalog JSON
//	go run ./cmd/tagcorrvet -readme README.md ./...  # README catalog drift
//
// Diagnostics print as file:line: [analyzer] message; the exit status is 1
// when anything was reported, 2 on usage or load errors, 0 on a clean
// tree. See DESIGN.md ("Static analysis") for the invariants behind each
// analyzer and the //vet:ok suppression directive.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/vet"
)

func main() {
	var (
		run     = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list    = flag.Bool("list", false, "list the registered analyzers and exit")
		catalog = flag.String("catalog", "", "write the extracted metric catalog as JSON to this file (- for stdout)")
		readme  = flag.String("readme", "", "cross-check the extracted metric catalog against this README file")
	)
	flag.Parse()

	analyzers := vet.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		byName := map[string]*vet.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatalf("unknown analyzer %q (use -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := vet.NewLoader(wd)
	if err != nil {
		fatalf("%v", err)
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fatalf("%v", err)
	}
	res, err := vet.Run(loader, paths, analyzers)
	if err != nil {
		fatalf("%v", err)
	}

	if *catalog != "" {
		data, err := res.Catalog.JSON()
		if err != nil {
			fatalf("%v", err)
		}
		if *catalog == "-" {
			fmt.Println(string(data))
		} else if err := os.WriteFile(*catalog, append(data, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
	}

	exit := 0
	for _, d := range res.Diagnostics {
		fmt.Println(rel(wd, d))
		exit = 1
	}
	if *readme != "" {
		data, err := os.ReadFile(*readme)
		if err != nil {
			fatalf("%v", err)
		}
		for _, p := range vet.CrossCheckREADME(data, res.Catalog.Families()) {
			fmt.Printf("%s: [readme] %s\n", *readme, p)
			exit = 1
		}
	}
	os.Exit(exit)
}

// rel shortens diagnostic paths to be relative to the working directory.
func rel(wd string, d vet.Diagnostic) string {
	if r, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		d.Pos.Filename = r
	}
	return d.String()
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tagcorrvet: "+format+"\n", args...)
	os.Exit(2)
}
