// Command tagcorrd is the live tag-correlation service: it feeds a
// generated or file-backed tweet stream into the concurrent pipeline and
// serves the current correlation state over HTTP while the stream is being
// consumed. It is the long-running counterpart of cmd/tagcorr.
//
//	tagcorrd -addr :8080                 # unbounded generated stream
//	tagcorrd -in tweets.jsonl -rate 5000 # replay a file at 5000 docs/s
//
//	curl localhost:8080/topk?k=10
//	curl localhost:8080/pairs/tag-42-1/tag-42-7
//	curl localhost:8080/trends?k=10
//	curl localhost:8080/trends/tag-42-1/tag-42-7
//	curl -N localhost:8080/events
//	curl localhost:8080/partition
//	curl localhost:8080/stats
//	curl localhost:8080/metrics
//	curl localhost:8080/healthz
//	curl localhost:8080/history/periods
//	curl 'localhost:8080/history/topk?period=3&k=10'
//	curl localhost:8080/history/pairs/tag-42-1/tag-42-7
//	curl 'localhost:8080/history/trends?period=3&k=10'
//
// With -archive-dir the daemon is durable: accepted coefficient reports
// and trend deviations stream into per-period segment files, checkpoints
// are written every -checkpoint-every reporting periods, the /history
// endpoints answer for periods arbitrarily far past -keep-periods, and a
// restart (even after SIGKILL) recovers from the newest valid checkpoint
// and resumes the source from the recorded cursor, logging a recovery
// summary. With -keep-periods > 0 a background compactor additionally
// coalesces pruned per-period segments into compacted files and, with
// -archive-budget, ages out the oldest compacted history to keep the
// directory under the byte budget.
//
// Observability: GET /metrics serves the full Prometheus text exposition
// (pipeline counters, stage-latency histograms, per-route request
// latency); -debug-addr serves net/http/pprof on a separate listener;
// logs are structured log/slog records on stderr, shaped by -log-format
// (text or json) and filtered by -log-level.
//
// A flight recorder rides along: a ring of recent operational events
// (repartitions with cause, checkpoint begin/end, compaction passes,
// retention prunes, spout-throttle saturation, archive errors), sampled
// end-to-end span traces for every -trace-sample-th document plus the
// slowest documents over -trace-slow-ms per window, and a stall watchdog
// whose verdict reaches /healthz, /readyz and the tagcorr_watchdog_*
// gauges. GET /debug/events, /debug/traces and /debug/traces/{id} expose
// the recorder; SIGQUIT dumps it through the log without stopping the
// daemon; -log-requests adds per-request debug logs.
//
// On SIGINT/SIGTERM the daemon drains gracefully: a checkpoint is written
// (so even a killed drain stays recoverable), the source stops, the
// in-flight tuples flush, a final snapshot and end-of-run checkpoint are
// taken, the run summary is printed, and the HTTP server shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registered on the DefaultServeMux, served only via -debug-addr
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/partition"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/telemetry"
	"repro/internal/twitgen"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		in      = flag.String("in", "", "JSONL input file (empty: generate synthetically)")
		alg     = flag.String("alg", "DS", "partitioning algorithm: DS, SCC, SCL, SCI, DS+split")
		k       = flag.Int("k", 10, "number of partitions / Calculators")
		p       = flag.Int("p", 10, "number of Partitioners")
		thr     = flag.Float64("thr", 0.5, "repartition threshold")
		repEv   = flag.Duration("report-every", 5*time.Minute, "Calculator reporting period, in virtual stream time")
		winSpan = flag.Duration("window-span", 5*time.Minute, "Partitioner window span, in virtual stream time")
		minutes = flag.Float64("minutes", 0, "generated stream length in virtual minutes (0: unbounded)")
		seed    = flag.Int64("seed", 1, "generator seed")
		rate    = flag.Float64("rate", 0, "documents per wall-clock second (0: full speed)")
		topk    = flag.Int("topk", 100, "coefficients kept in the snapshot cache")
		refresh = flag.Duration("refresh", 250*time.Millisecond, "snapshot cache refresh interval")
		periods = flag.Int("keep-periods", 12, "reporting periods retained in memory (0: keep all)")
		shards  = flag.Int("tracker-shards", 0, "Tracker lock shards (0: default 16)")
		evicted = flag.Int("evicted-pairs", 4096, "LRU capacity for coefficients pruned by -keep-periods (0: off)")
		pending = flag.Int("spout-pending", 0, "spout throttle: max tuples in flight (0: default 4096)")
		trTasks = flag.Int("tracker-tasks", 4, "Tracker task parallelism, fields-grouped on tagset hash (0: 1 task)")
		nBatch  = flag.Int("notify-batch", 64, "documents per Disseminator→Calculator notification batch (0: per-document tuples)")

		trendOn    = flag.Bool("trend", true, "enable the streaming trend detector (/trends, /events)")
		trendAlpha = flag.Float64("trend-alpha", 0.4, "trend predictor smoothing factor")
		trendTopK  = flag.Int("trend-topk", 50, "maintained top-trends heap bound per period")
		trendMinCN = flag.Int64("trend-min-support", 5, "minimum intersection counter for trend scoring")
		trendThr   = flag.Float64("trend-threshold", 0.1, "minimum score pushed on the /events feed")

		archiveDir = flag.String("archive-dir", "", "durability directory: per-period segments + checkpoints; serves /history and enables crash recovery (empty: off)")
		ckptEvery  = flag.Int("checkpoint-every", 1, "write a checkpoint every N reporting periods (with -archive-dir)")
		archBudget = flag.Int64("archive-budget", 0, "archive disk budget in bytes: pruned periods are compacted and, past the budget, the oldest compacted history is aged out (0: keep everything; with -archive-dir and -keep-periods > 0)")

		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty: off)")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")

		traceSample  = flag.Int("trace-sample", 256, "flight recorder: trace every Nth document end to end (0: tracing off)")
		traceSlowMS  = flag.Int64("trace-slow-ms", 250, "flight recorder: also retain the slowest documents over this latency, per window")
		flightEvents = flag.Int("flight-events", 1024, "flight recorder: operational event ring capacity (rounded up to a power of two)")
		logRequests  = flag.Bool("log-requests", false, "log every HTTP request (route, status, latency) at debug level")
	)
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tagcorrd: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	// The query server builds its own mux, so the DefaultServeMux carries
	// nothing but the pprof handlers net/http/pprof registered — serving it
	// on a separate listener keeps profiling off the public query address.
	if *debugAddr != "" {
		go func() {
			slog.Info("pprof debug server listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				slog.Error("debug server failed", "err", err)
			}
		}()
	}

	cfg := core.DefaultConfig()
	cfg.Algorithm = partition.Algorithm(*alg)
	cfg.K = *k
	cfg.P = *p
	cfg.Thr = *thr
	cfg.ReportEvery = stream.Millis(repEv.Milliseconds())
	cfg.WindowSpan = stream.Millis(winSpan.Milliseconds())
	// A daemon runs indefinitely: bound the Tracker's memory and skip the
	// batch-oriented figure time series. The evicted-pair LRU keeps point
	// lookups answerable across the retention window.
	cfg.KeepPeriods = *periods
	cfg.NoSeries = true
	cfg.TrackerShards = *shards
	cfg.EvictedPairs = *evicted
	if *periods == 0 && *evicted > 0 {
		// Unbounded retention never prunes, so there is nothing for the
		// evicted-pair LRU to catch; drop it rather than failing validation
		// on the flag default.
		slog.Warn("-keep-periods 0 retains everything; disabling evicted-pair LRU", "evicted_pairs", *evicted)
		cfg.EvictedPairs = 0
	}
	cfg.SpoutPending = *pending
	// Hot-path fan-out: several Tracker tasks share the one sharded
	// Tracker, and Disseminator→Calculator traffic ships in batches.
	cfg.TrackerTasks = *trTasks
	cfg.NotifyBatch = *nBatch
	cfg.Trend = *trendOn
	cfg.TrendAlpha = *trendAlpha
	cfg.TrendTopK = *trendTopK
	cfg.TrendMinSupport = *trendMinCN
	cfg.TrendThreshold = *trendThr

	// The flight recorder is always built: the event ring and watchdog
	// cost almost nothing at steady state, and sampled tracing touches one
	// document in -trace-sample. -trace-sample 0 turns tracing off while
	// keeping the operational event ring.
	frec := flight.NewRecorder(flight.Config{
		Sample: *traceSample,
		SlowMS: *traceSlowMS,
		Events: *flightEvents,
	})
	cfg.Flight = frec

	// Crash recovery: with -archive-dir, load the newest valid checkpoint
	// (CRC-verified; a torn newest file falls back to its predecessor),
	// rebuild the tag dictionary so the stream interns to the same ids,
	// and resume the source from the recorded cursor. The replayed suffix
	// rebuilds the period that was in flight when the checkpoint was cut.
	var rec *core.Recovered
	dict := tagset.NewDictionary()
	if *archiveDir != "" {
		var err error
		if rec, err = core.Restore(*archiveDir); err != nil {
			fatal("restore failed", "dir", *archiveDir, "err", err)
		}
		if rec != nil {
			dict = rec.Dictionary()
			periods := rec.Periods()
			slog.Info("recovered from checkpoint", "dir", *archiveDir,
				"periods", len(periods), "period_ids", periods,
				"epoch", rec.Epoch(), "resume_doc", rec.SkipDocs())
		} else {
			slog.Info("no checkpoint found; starting fresh", "dir", *archiveDir)
		}
		cfg.ArchiveDir = *archiveDir
		cfg.ArchiveDict = dict
		cfg.CheckpointEvery = *ckptEvery
		cfg.ArchiveBudgetBytes = *archBudget
		if *periods == 0 && *archBudget > 0 {
			// Without retention no period is ever sealed, so nothing could
			// be compacted or aged out; drop the budget rather than failing
			// validation on a flag combination.
			slog.Warn("-keep-periods 0 retains everything; disabling archive budget", "archive_budget", *archBudget)
			cfg.ArchiveBudgetBytes = 0
		}
	} else if *archBudget > 0 {
		slog.Warn("-archive-budget without -archive-dir; ignoring", "archive_budget", *archBudget)
	}

	src, srcErr, err := buildSource(*in, *minutes, *seed, dict)
	if err != nil {
		fatal("building document source failed", "err", err)
	}
	if rec != nil {
		src = rec.FastForward(src)
	}
	if *rate > 0 {
		src = paced(src, *rate)
	}
	src, stop := core.StopSource(src)

	pipe, err := core.NewPipeline(cfg, src)
	if err != nil {
		fatal("pipeline construction failed", "err", err)
	}
	if err := pipe.Adopt(rec); err != nil {
		fatal("adopting recovered state failed", "err", err)
	}
	h := pipe.Start()
	scfg := server.Config{
		TopK:        *topk,
		Refresh:     *refresh,
		Flight:      frec,
		LogRequests: *logRequests,
		Logger:      logger,
	}
	if *archiveDir != "" {
		scfg.History = archive.OpenReader(*archiveDir)
	}
	srv := server.New(pipe, h, dict, scfg)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		slog.Info("serving", "addr", *addr,
			"algorithm", string(cfg.Algorithm), "k", cfg.K, "p", cfg.P, "thr", cfg.Thr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("http server failed", "err", err)
		}
	}()

	// SIGQUIT dumps the flight recorder — watchdog verdict, counters, the
	// operational event ring, retained trace summaries — through slog and
	// keeps the daemon running. Catching the signal replaces the runtime's
	// default goroutine-dump-and-exit; use the pprof listener for stacks.
	sigq := make(chan os.Signal, 1)
	signal.Notify(sigq, syscall.SIGQUIT)
	go func() {
		for range sigq {
			dumpFlight(frec, srv)
		}
	}()

	// A finite stream (file input or -minutes) may drain on its own; the
	// daemon keeps serving the final state until a signal arrives.
	go func() {
		h.Wait()
		slog.Info("stream drained; serving final state until shutdown")
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	slog.Info("shutting down, draining stream")

	// Write a checkpoint before draining: if the drain itself is killed,
	// the next start still recovers to this moment. The drain's own
	// end-of-run checkpoint (written inside Wait) then supersedes it.
	if *archiveDir != "" && h.Running() {
		if err := pipe.Checkpoint(); err != nil {
			slog.Error("pre-drain checkpoint failed", "err", err)
		}
	}
	stop()
	res := h.Wait()
	srv.Close() // final snapshot: the cache now holds the end-of-run state
	if err := pipe.ArchiveErr(); err != nil {
		slog.Error("archive checkpoint error during run", "err", err)
	}

	fmt.Printf("# docs=%d (bootstrap %d) communication=%.3f loadGini=%.3f\n",
		res.DocsProcessed, res.DocsBeforeInstall, res.Communication, res.LoadGini)
	fmt.Printf("# repartitions=%d (comm=%d load=%d both=%d) singleAdditions=%d periods=%d\n",
		res.Repartitions, res.RepartitionsComm, res.RepartitionsLoad, res.RepartitionsBoth,
		res.SingleAdditions, len(res.Tracker.Periods()))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		slog.Error("http shutdown failed", "err", err)
	}
	// A replay truncated by a malformed input line served only a prefix of
	// the capture; exit non-zero so scripted replays cannot mistake it for
	// a complete run.
	if err := srcErr(); err != nil {
		fatal("input stream truncated", "err", err)
	}
}

// dumpFlight logs the flight recorder's full state: the watchdog verdict,
// the trace counters, every event still in the ring and the retained trace
// summaries. Invoked on SIGQUIT; the daemon keeps running afterwards.
func dumpFlight(rec *flight.Recorder, srv *server.Server) {
	st := rec.Snapshot()
	slog.Info("flight recorder dump",
		"verdict", srv.Watchdog().Verdict(),
		"docs_seen", st.DocsSeen, "traces_started", st.TracesStarted,
		"retained_sample", st.KeptSample, "retained_slow", st.KeptSlow,
		"discarded", st.Discarded, "active", st.Active, "retained", st.Retained,
		"events", st.EventsRecorded)
	for _, e := range rec.Events() {
		slog.Info("flight event", "seq", e.Seq, "kind", e.Kind,
			"at", telemetry.Wall(e.At).Format(time.RFC3339Nano), "msg", e.Msg)
	}
	for _, t := range rec.Traces(32) {
		slog.Info("flight trace", "id", t.ID, "sampled", t.Sampled,
			"retained", t.Retained, "complete", t.Complete,
			"spans", t.Spans, "duration_us", t.DurationUS)
	}
}

// newLogger builds the daemon's slog logger from the -log-format and
// -log-level flags. Logs go to stderr; stdout stays reserved for the
// end-of-run summary lines.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q (want text or json)", format)
	}
}

// fatal logs at error level and exits non-zero — the slog counterpart of
// log.Fatalf.
func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

// buildSource returns the document stream — a JSONL file replayed lazily
// line by line (replay memory stays O(1) in the capture size), or the
// synthetic generator (optionally capped at the given virtual length) —
// plus a srcErr to consult after the run: a scan or parse failure ends the
// lazy replay early, and the daemon must not report such a truncated run
// as success.
func buildSource(in string, minutes float64, seed int64, dict *tagset.Dictionary) (core.DocumentSource, func() error, error) {
	noErr := func() error { return nil }
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, nil, err
		}
		jsonl := stream.NewJSONLSource(f, dict)
		var closeOnce sync.Once
		src := func() (stream.Document, bool) {
			d, ok := jsonl.Next()
			if !ok {
				closeOnce.Do(func() {
					if err := jsonl.Err(); err != nil {
						slog.Error("input stream ends early", "file", in, "err", err)
					}
					f.Close()
				})
			}
			return d, ok
		}
		return src, jsonl.Err, nil
	}

	gcfg := twitgen.Default()
	gcfg.Seed = seed
	gen, err := twitgen.New(gcfg, dict)
	if err != nil {
		return nil, nil, err
	}
	if minutes <= 0 {
		return func() (stream.Document, bool) { return gen.Next(), true }, noErr, nil
	}
	limit := stream.Minutes(minutes)
	return func() (stream.Document, bool) {
		d := gen.Next()
		if d.Time >= limit {
			return stream.Document{}, false
		}
		return d, true
	}, noErr, nil
}

// paced limits src to the given documents per wall-clock second. The sleep
// is batched so coarse OS timer granularity cannot throttle far below the
// requested rate.
func paced(src core.DocumentSource, perSecond float64) core.DocumentSource {
	var (
		start time.Time
		n     int64
	)
	return func() (stream.Document, bool) {
		if start.IsZero() {
			start = time.Now()
		}
		n++
		due := start.Add(time.Duration(float64(n) / perSecond * float64(time.Second)))
		if ahead := time.Until(due); ahead > 10*time.Millisecond {
			time.Sleep(ahead)
		}
		return src()
	}
}
