// Command loadgen is the sustained-load benchmark harness: it pushes a
// named synthetic workload suite through the pipeline — in-process, over a
// loopback HTTP server, or against an already-running tagcorrd — while
// concurrent query loops hammer /topk, /trends, /pairs and /history, and
// writes a schema-versioned BENCH_<suite>.json report (ingest docs/sec,
// per-endpoint latency quantiles, snapshot age, checkpoint stall, RSS).
//
//	loadgen -suite smoke                      # the CI suite, <60s
//	loadgen -suite all -out bench/            # full capacity run
//	loadgen -suite steady -mode http          # same pipeline, over TCP
//	loadgen -suite steady -target http://host:8080 -duration 60s
//	loadgen -suite smoke -baseline BENCH_smoke.json   # regression gate
//	loadgen -suite smoke -metrics-out                 # + METRICS_smoke.prom scrape dump
//
// With -baseline, loadgen exits non-zero when ingest throughput regressed
// more than -max-regress (default 25%) against the baseline report — the
// CI gate. Every suite is deterministic per -seed: equal seeds generate
// byte-identical document streams, so BENCH files form a comparable
// trajectory across commits.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/load"
)

func main() {
	var (
		suite      = flag.String("suite", "smoke", "workload suite: "+strings.Join(load.Names(), ", ")+", or all")
		mode       = flag.String("mode", "inproc", "local driver: inproc (direct handler calls) or http (loopback TCP)")
		target     = flag.String("target", "", "aim at a running tagcorrd base URL instead of a local pipeline")
		seed       = flag.Int64("seed", 1, "generator seed (equal seeds give byte-identical streams)")
		docs       = flag.Int("docs", 0, "override the suite's document count (0: suite default)")
		workers    = flag.Int("workers", 0, "override per-endpoint query workers (0: suite default)")
		duration   = flag.Duration("duration", 30*time.Second, "measurement window with -target")
		out        = flag.String("out", ".", "directory BENCH_<suite>.json reports are written into")
		baseline   = flag.String("baseline", "", "BENCH report to gate ingest throughput against")
		maxRegress = flag.Float64("max-regress", 0.25, "maximum allowed ingest throughput regression vs -baseline")
		pace       = flag.Int("pace", 0, "cap local ingest at this many docs/sec (0: closed-loop)")
		metricsOut = flag.Bool("metrics-out", false, "dump the final /metrics scrape as METRICS_<suite>.prom next to the BENCH report")
	)
	flag.Parse()

	var suites []load.Suite
	if *suite == "all" {
		suites = load.Suites()
	} else {
		s, ok := load.Lookup(*suite)
		if !ok {
			log.Fatalf("loadgen: unknown suite %q (have: %s, all)", *suite, strings.Join(load.Names(), ", "))
		}
		suites = []load.Suite{s}
	}
	if *target != "" && *suite == "all" {
		log.Fatalf("loadgen: -target measures the one running daemon; pick a single suite")
	}

	opt := load.Options{
		Mode:          load.Mode(*mode),
		Target:        *target,
		Seed:          *seed,
		Docs:          *docs,
		QueryWorkers:  *workers,
		Duration:      *duration,
		MaxDocsPerSec: *pace,
	}
	if opt.Mode != load.ModeInproc && opt.Mode != load.ModeHTTP {
		log.Fatalf("loadgen: -mode %q (want inproc or http)", *mode)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("loadgen: -out: %v", err)
	}

	var reports []*load.Report
	for _, s := range suites {
		log.Printf("loadgen: suite %s (%s): %d docs, seed %d", s.Name, s.Description, s.Docs, *seed)
		if *metricsOut {
			opt.MetricsOut = filepath.Join(*out, "METRICS_"+s.Name+".prom")
		}
		rep, err := load.Run(s, opt)
		if err != nil {
			log.Fatalf("loadgen: suite %s: %v", s.Name, err)
		}
		if err := rep.Validate(); err != nil {
			log.Fatalf("loadgen: suite %s produced an invalid report: %v", s.Name, err)
		}
		path, err := rep.WriteFile(*out)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		log.Printf("loadgen: suite %s: %.0f docs/s over %.1fs -> %s",
			s.Name, rep.IngestDocsPerSec, rep.DurationSec, path)
		reports = append(reports, rep)
	}

	fmt.Print(load.Table(reports))

	if *baseline != "" {
		base, err := load.ReadReport(*baseline)
		if err != nil {
			log.Fatalf("loadgen: baseline: %v", err)
		}
		gated := false
		for _, rep := range reports {
			if rep.Suite != base.Suite {
				continue
			}
			gated = true
			if err := load.CompareIngest(base, rep, *maxRegress); err != nil {
				log.Fatalf("loadgen: GATE FAILED: %v", err)
			}
			log.Printf("loadgen: gate ok: %.0f docs/s vs baseline %.0f (floor %.0f)",
				rep.IngestDocsPerSec, base.IngestDocsPerSec, base.IngestDocsPerSec*(1-*maxRegress))
		}
		if !gated {
			log.Fatalf("loadgen: baseline suite %q was not among the suites run", base.Suite)
		}
	}
	os.Exit(0)
}
