// Command datagen materialises a synthetic tweet stream as JSONL for
// repeatable experiments:
//
//	datagen -minutes 30 -seed 7 -o tweets.jsonl
//	datagen -minutes 5 -mix 0.03        # giant-component regime
//
// Each line is {"id":..,"time_ms":..,"tags":["t12_3",...]}.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/twitgen"
)

func main() {
	var (
		out     = flag.String("o", "-", "output file (- for stdout)")
		minutes = flag.Float64("minutes", 10, "virtual stream length in minutes")
		seed    = flag.Int64("seed", 1, "generator seed")
		tps     = flag.Int("tps", 1300, "full-stream tweets per second")
		mix     = flag.Float64("mix", -1, "cross-topic mixing probability (default: generator default)")
		newTag  = flag.Float64("newtag", -1, "new-tag injection probability (default: generator default)")
	)
	flag.Parse()

	cfg := twitgen.Default()
	cfg.Seed = *seed
	cfg.TPS = *tps
	if *mix >= 0 {
		cfg.MixProb = *mix
	}
	if *newTag >= 0 {
		cfg.NewTagProb = *newTag
	}

	dict := tagset.NewDictionary()
	gen, err := twitgen.New(cfg, dict)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}

	limit := stream.Minutes(*minutes)
	var docs []stream.Document
	for {
		d := gen.Next()
		if d.Time >= limit {
			break
		}
		docs = append(docs, d)
	}
	if err := stream.WriteJSONL(w, dict, docs); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d documents (%g virtual minutes, %d distinct tags)\n",
		len(docs), *minutes, dict.Len())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
