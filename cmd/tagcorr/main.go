// Command tagcorr runs the full distributed tag-correlation pipeline on a
// JSONL tweet file (see cmd/datagen) or a freshly generated stream, and
// prints the tracked Jaccard coefficients per reporting period.
//
//	tagcorr -minutes 20 -alg DS
//	datagen -minutes 20 -o t.jsonl && tagcorr -in t.jsonl -alg SCL
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/twitgen"
)

func main() {
	var (
		in      = flag.String("in", "", "JSONL input file (empty: generate synthetically)")
		alg     = flag.String("alg", "DS", "partitioning algorithm: DS, SCC, SCL, SCI, DS+split")
		k       = flag.Int("k", 10, "number of partitions / Calculators")
		p       = flag.Int("p", 10, "number of Partitioners")
		thr     = flag.Float64("thr", 0.5, "repartition threshold")
		minutes = flag.Float64("minutes", 20, "generated stream length (ignored with -in)")
		seed    = flag.Int64("seed", 1, "generator seed")
		minCN   = flag.Int64("mincn", 10, "only print coefficients with support >= mincn")
		top     = flag.Int("top", 20, "coefficients to print per period")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Algorithm = partition.Algorithm(*alg)
	cfg.K = *k
	cfg.P = *p
	cfg.Thr = *thr

	dict := tagset.NewDictionary()
	var src core.DocumentSource
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		var docs []stream.Document
		err = stream.ReadJSONL(f, dict, func(d stream.Document) error {
			docs = append(docs, d)
			return nil
		})
		if err != nil {
			fatal(err)
		}
		src = core.SliceSource(docs)
	} else {
		gcfg := twitgen.Default()
		gcfg.Seed = *seed
		gen, err := twitgen.New(gcfg, dict)
		if err != nil {
			fatal(err)
		}
		limit := stream.Minutes(*minutes)
		src = func() (stream.Document, bool) {
			d := gen.Next()
			if d.Time >= limit {
				return stream.Document{}, false
			}
			return d, true
		}
	}

	pipe, err := core.NewPipeline(cfg, src)
	if err != nil {
		fatal(err)
	}
	res := pipe.Run()

	fmt.Printf("# algorithm=%s k=%d P=%d thr=%g\n", cfg.Algorithm, cfg.K, cfg.P, cfg.Thr)
	fmt.Printf("# docs=%d (bootstrap %d) communication=%.3f loadGini=%.3f\n",
		res.DocsProcessed, res.DocsBeforeInstall, res.Communication, res.LoadGini)
	fmt.Printf("# repartitions=%d (comm=%d load=%d both=%d) singleAdditions=%d\n",
		res.Repartitions, res.RepartitionsComm, res.RepartitionsLoad, res.RepartitionsBoth,
		res.SingleAdditions)

	for _, period := range res.Tracker.Periods() {
		rep := res.Tracker.Report(period)
		fmt.Printf("\n== period %d (%d coefficients) ==\n", period, len(rep))
		shown := 0
		for _, c := range rep {
			if c.CN < *minCN {
				continue
			}
			names := dict.Strings(c.Tags)
			fmt.Printf("J=%.4f n=%-5d %v\n", c.J, c.CN, names)
			if shown++; shown == *top {
				break
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tagcorr:", err)
	os.Exit(1)
}
