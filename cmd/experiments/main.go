// Command experiments regenerates the paper's evaluation figures on the
// synthetic stream:
//
//	experiments -fig 3            # Figure 3 (communication)
//	experiments -fig all          # every figure
//	experiments -fig theory       # Section 5 models
//	experiments -fig mixing       # giant-component ablation (§5.1/§8.3)
//	experiments -minutes 90       # longer virtual stream
//
// Output is plain-text tables; each row/series corresponds to one plotted
// point of the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/expr"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3,4,5,6,7,8,9,theory,mixing,all")
	minutes := flag.Float64("minutes", 60, "virtual stream length in minutes")
	seed := flag.Int64("seed", 1, "stream seed")
	flag.Parse()

	suite := expr.NewSuite(expr.Defaults{Minutes: *minutes, Seed: *seed}, nil)

	builders := map[string]func(*expr.Suite) *expr.Figure{
		"3":      expr.Fig3,
		"4":      expr.Fig4,
		"5":      expr.Fig5,
		"6":      expr.Fig6,
		"7":      expr.Fig7,
		"8":      expr.Fig8,
		"9":      expr.Fig9,
		"theory": expr.TheoryFigure,
	}
	order := []string{"3", "4", "5", "6", "7", "8", "9", "theory", "mixing"}

	var wanted []string
	switch *fig {
	case "all":
		wanted = order
	default:
		for _, f := range strings.Split(*fig, ",") {
			f = strings.TrimSpace(f)
			if f != "mixing" && builders[f] == nil {
				fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", f)
				os.Exit(2)
			}
			wanted = append(wanted, f)
		}
	}

	// Pre-run the shared sweep grid in parallel when several sweep figures
	// are requested.
	needsSweep := 0
	for _, f := range wanted {
		switch f {
		case "3", "4", "5", "6", "8", "9":
			needsSweep++
		}
	}
	if needsSweep > 1 {
		fmt.Fprintf(os.Stderr, "running %d experiment cells (%g virtual minutes each)...\n",
			len(expr.SweepCells()), *minutes)
		suite.RunAll(expr.SweepCells())
	}

	for _, f := range wanted {
		if f == "mixing" {
			mix := expr.GiantComponentFigure(5, *seed)
			if _, err := mix.WriteTo(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Println()
			continue
		}
		figure := builders[f](suite)
		if _, err := figure.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
