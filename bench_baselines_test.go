// Baseline and substrate benchmarks: the Kernighan–Lin graph-partitioning
// baseline the related work discusses (Section 2), the sketch-based
// co-occurrence alternative the paper rejects (Section 2), and the
// set-valued index structures behind the Disseminator's routing choice
// (Section 3.3).
package repro

import (
	"fmt"
	"testing"

	"repro/internal/partition"
	"repro/internal/setindex"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/tagset"
)

// BenchmarkBaselineKL compares the classic Kernighan–Lin partitioner
// against the paper's online algorithms on one window: KL attains
// comparable quality (its raison d'être) at a build cost that the ns/op
// column shows to be orders of magnitude above DS — the paper's argument
// for not using it in a continuously repartitioning system.
func BenchmarkBaselineKL(b *testing.B) {
	snap := snapshotOf(benchDocs(2000, 11))
	b.Run("KL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := partition.BuildKL(snap, 10, 2, 1)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				q := partition.Evaluate(res, snap)
				b.ReportMetric(q.AvgCom, "avgcom")
				b.ReportMetric(q.Gini, "gini")
			}
		}
	})
	for _, alg := range []partition.Algorithm{partition.DS, partition.SCC, partition.SCL} {
		alg := alg
		b.Run(string(alg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := partition.Build(snap, partition.Options{Algorithm: alg, K: 10, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					q := partition.Evaluate(res, snap)
					b.ReportMetric(q.AvgCom, "avgcom")
					b.ReportMetric(q.Gini, "gini")
				}
			}
		})
	}
}

// BenchmarkAblationSketches quantifies the Section 2 objection to sketches:
// representing each tag's document set with a Bloom filter makes
// truly-disjoint tag pairs look co-occurring. The benchmark builds filters
// for the window's tags, estimates pairwise intersections among a sample of
// non-co-occurring pairs, and reports the false-pair rate — the extra work
// a sketch-based system would take on — against the exact counters' zero.
func BenchmarkAblationSketches(b *testing.B) {
	docs := benchDocs(8000, 12)

	// Exact per-tag document sets and true co-occurrence.
	tagDocs := make(map[tagset.Tag][]string)
	cooccur := make(map[[2]tagset.Tag]bool)
	for _, d := range docs {
		id := fmt.Sprintf("d%d", d.ID)
		for i, tg := range d.Tags {
			tagDocs[tg] = append(tagDocs[tg], id)
			for _, other := range d.Tags[i+1:] {
				cooccur[[2]tagset.Tag{tg, other}] = true
			}
		}
	}
	// Tags with enough documents to matter.
	var tags []tagset.Tag
	for tg, ds := range tagDocs {
		if len(ds) >= 20 {
			tags = append(tags, tg)
		}
	}
	if len(tags) > 120 {
		tags = tags[:120]
	}

	for _, fpp := range []float64{0.01, 0.1} {
		fpp := fpp
		b.Run(fmt.Sprintf("bloom-fpp=%g", fpp), func(b *testing.B) {
			// All filters share one sizing so intersections are estimable.
			proto := sketch.NewBloom(512, fpp)
			filters := make(map[tagset.Tag]*sketch.Bloom, len(tags))
			for _, tg := range tags {
				f := sketch.CloneEmpty(proto)
				for _, id := range tagDocs[tg] {
					f.Add(id)
				}
				filters[tg] = f
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				falsePairs, truePairs, checked := 0, 0, 0
				for x := 0; x < len(tags); x++ {
					for y := x + 1; y < len(tags); y++ {
						a, c := tags[x], tags[y]
						est := sketch.EstimateIntersection(filters[a], filters[c],
							int64(len(tagDocs[a])), int64(len(tagDocs[c])))
						checked++
						looks := est >= 1
						real := cooccur[[2]tagset.Tag{a, c}] || cooccur[[2]tagset.Tag{c, a}]
						if looks && !real {
							falsePairs++
						}
						if real {
							truePairs++
						}
					}
				}
				b.ReportMetric(float64(falsePairs), "false-pairs")
				b.ReportMetric(float64(truePairs), "true-pairs")
				b.ReportMetric(float64(checked), "pairs-checked")
			}
		})
	}
}

// BenchmarkSetIndexStructures reproduces the Section 3.3 design study on
// the Disseminator's routing query: which Calculators hold any of a
// document's tags. The inverted index wins — the paper's choice.
func BenchmarkSetIndexStructures(b *testing.B) {
	snap := snapshotOf(benchDocs(8000, 13))
	res, err := partition.Build(snap, partition.Options{Algorithm: partition.SCL, K: 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	queries := benchDocs(4096, 14)

	build := map[string]func() setindex.Index{
		"scan":      func() setindex.Index { return setindex.NewScan() },
		"signature": func() setindex.Index { return setindex.NewSignature(16) },
		"inverted":  func() setindex.Index { return setindex.NewInverted() },
	}
	for _, name := range []string{"scan", "signature", "inverted"} {
		name := name
		b.Run(name, func(b *testing.B) {
			idx := build[name]()
			for i, p := range res.Parts {
				if !p.Tags.IsEmpty() {
					idx.Add(i, p.Tags)
				}
			}
			var dst []int
			b.ResetTimer()
			hits := 0
			for i := 0; i < b.N; i++ {
				dst = idx.Intersecting(queries[i%len(queries)].Tags, dst[:0])
				hits += len(dst)
			}
			_ = hits
		})
	}
}

// BenchmarkAblationAutoScale measures topology scaling (Section 7.3): with
// a load target, light streams activate fewer Calculators without hurting
// coverage.
func BenchmarkAblationAutoScale(b *testing.B) {
	for _, target := range []int64{0, 2000, 8000} {
		target := target
		name := "fixed-k"
		if target > 0 {
			name = fmt.Sprintf("target=%d", target)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				docs := benchDocs(16000, 15)
				cfg := benchPipelineConfig()
				cfg.AutoScaleLoad = target
				res := runPipeline(b, cfg, docs)
				active := 0
				for _, c := range res.Dissem.PerCalculator {
					if c > 0 {
						active++
					}
				}
				b.ReportMetric(float64(active), "active-calcs")
				b.ReportMetric(res.Communication, "comm")
			}
		})
	}
}

// BenchmarkWindowKinds compares the Partitioner's two window types
// (Section 6.2): time-based vs count-based, on insertion throughput.
func BenchmarkWindowKinds(b *testing.B) {
	docs := benchDocs(16384, 16)
	b.Run("time-5min", func(b *testing.B) {
		w := stream.NewSlidingWindow(stream.Minutes(5))
		for i := 0; i < b.N; i++ {
			w.Add(docs[i%len(docs)])
		}
	})
	b.Run("count-10000", func(b *testing.B) {
		w := stream.NewCountWindow(10000)
		for i := 0; i < b.N; i++ {
			w.Add(docs[i%len(docs)])
		}
	})
}
