// Example liveserver shows the live query subsystem without HTTP: it
// starts the concurrent pipeline on an unbounded generated stream, takes
// periodic snapshots while the stream is being consumed, then stops the
// source and drains gracefully — the same Start / Snapshot / StopSource
// mechanics cmd/tagcorrd wires behind its HTTP endpoints.
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/twitgen"
)

func main() {
	dict := tagset.NewDictionary()
	gcfg := twitgen.Default()
	gen, err := twitgen.New(gcfg, dict)
	if err != nil {
		panic(err)
	}

	// An unbounded source the example stops explicitly — the shape of a
	// live deployment, where the stream has no natural end.
	src, stop := core.StopSource(func() (stream.Document, bool) {
		return gen.Next(), true
	})

	cfg := core.DefaultConfig()
	cfg.WindowSpan = stream.Minutes(1)
	cfg.ReportEvery = stream.Minutes(1)

	pipe, err := core.NewPipeline(cfg, src)
	if err != nil {
		panic(err)
	}
	h := pipe.Start()

	// Watch the run live: the pipeline is streaming while we snapshot.
	for i := 0; i < 5; i++ {
		time.Sleep(400 * time.Millisecond)
		s := h.Snapshot(3)
		fmt.Printf("t+%.1fs docs=%d epoch=%d partitions=%d periods=%d comm=%.2f gini=%.2f\n",
			0.4*float64(i+1), s.DocsProcessed, s.Epoch, len(s.Partitions),
			len(s.Periods), s.Communication, s.LoadGini)
		for _, c := range s.TopK {
			fmt.Printf("    J=%.3f n=%-4d %v\n", c.J, c.CN, dict.Strings(c.Tags))
		}
	}

	// Graceful drain: end the source, flush in-flight tuples, collect.
	stop()
	res := h.Wait()
	fmt.Printf("drained: docs=%d communication=%.3f loadGini=%.3f repartitions=%d periods=%d\n",
		res.DocsProcessed, res.Communication, res.LoadGini,
		res.Repartitions, len(res.Tracker.Periods()))
}
