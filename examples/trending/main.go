// Trending: enBlogue-style emergent-topic detection (the application the
// paper's introduction motivates). The pipeline tracks Jaccard coefficients
// per reporting period; the trend detector scores each tagset's correlation
// against its smoothed prediction — a large error signals an emerging or
// collapsing association.
//
//	go run ./examples/trending
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/trend"
	"repro/internal/twitgen"
)

func main() {
	dict := tagset.NewDictionary()
	gcfg := twitgen.Default()
	gcfg.DriftInterval = stream.Minutes(3) // brisk topic churn
	gen, err := twitgen.New(gcfg, dict)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.Algorithm = partition.DS
	const docs = 40 * 60 * 65 // 40 virtual minutes of tagged tweets
	pipe, err := core.NewPipeline(cfg, core.GeneratorSource(gen.Next, docs))
	if err != nil {
		log.Fatal(err)
	}
	res := pipe.Run()

	periods := res.Tracker.Periods()
	if len(periods) < 2 {
		log.Fatal("stream too short for trend detection")
	}
	fmt.Printf("%d reporting periods of %dms each\n", len(periods), cfg.ReportEvery)

	tcfg := trend.DefaultConfig()
	tcfg.MinSupport = 10
	detector, err := trend.NewDetector(tcfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, period := range periods {
		events := detector.Feed(period, res.Tracker.Report(period))
		var emerging []trend.Event
		for _, e := range events {
			if e.Rising && e.Score > 0.15 && e.Tags.Len() == 2 {
				emerging = append(emerging, e)
			}
		}
		fmt.Printf("\nperiod %d: %d strong emerging pairs (tracking %d tagsets)\n",
			period, len(emerging), detector.Tracked())
		for _, e := range trend.TopK(emerging, 5) {
			names := dict.Strings(e.Tags)
			fmt.Printf("  ΔJ=%+.3f (%.3f→%.3f, n=%d)  #%s ~ #%s\n",
				e.Observed-e.Predicted, e.Predicted, e.Observed, e.CN, names[0], names[1])
		}
	}
}
