// Trending: enBlogue-style emergent-topic detection (the application the
// paper's introduction motivates), served live. The concurrent pipeline
// runs with the streaming trend subsystem enabled: the Tracker forwards
// every accepted Jaccard report to the Trend operator, whose sharded
// detector scores each tagset's correlation against its smoothed
// prediction — a large error signals an emerging or collapsing
// association. While the stream is still being consumed, this example
// follows the /events SSE feed and prints trend events as they fire, then
// stops the source, drains, and asks /trends for the final ranking — the
// same surface cmd/tagcorrd serves.
//
//	go run ./examples/trending
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/server"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/twitgen"
)

func main() {
	dict := tagset.NewDictionary()
	gcfg := twitgen.Default()
	gcfg.DriftInterval = stream.Minutes(2) // brisk topic churn
	gen, err := twitgen.New(gcfg, dict)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.Algorithm = partition.DS
	cfg.ReportEvery = stream.Minutes(1)
	cfg.WindowSpan = stream.Minutes(1)
	cfg.Trend = true
	cfg.TrendMinSupport = 5
	cfg.TrendThreshold = 0.1
	cfg.TrendTopK = 32

	// An unbounded source the example stops once it has seen enough trend
	// events — the shape of a live deployment, where the stream has no
	// natural end.
	src, stop := core.StopSource(func() (stream.Document, bool) {
		return gen.Next(), true
	})
	pipe, err := core.NewPipeline(cfg, src)
	if err != nil {
		log.Fatal(err)
	}
	h := pipe.Start()
	srv := server.New(pipe, h, dict, server.Config{TopK: 50})
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck // closed on exit
	base := "http://" + ln.Addr().String()
	fmt.Printf("streaming drifting tweets, trend surface on %s\n\n", base)

	// Follow the SSE feed while the executor streams: every event is one
	// tagset whose correlation moved at least TrendThreshold away from its
	// prediction. After enough events the source is stopped; the feed ends
	// with an `end` event once the dataflow drains.
	resp, err := http.Get(base + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	const enough = 12
	events, rising := 0, 0
	for sc.Scan() {
		line := sc.Text()
		if line == "event: end" {
			break
		}
		if !strings.HasPrefix(line, "data: ") || line == "data: {}" {
			continue
		}
		var ev struct {
			Tags      []string `json:"tags"`
			Period    int64    `json:"period"`
			Predicted float64  `json:"predicted"`
			Observed  float64  `json:"observed"`
			Rising    bool     `json:"rising"`
			CN        int64    `json:"cn"`
		}
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			continue
		}
		events++
		if ev.Rising {
			rising++
		}
		if len(ev.Tags) == 2 {
			fmt.Printf("period %2d  ΔJ=%+.3f (%.3f→%.3f, n=%d)  #%s ~ #%s\n",
				ev.Period, ev.Observed-ev.Predicted, ev.Predicted, ev.Observed,
				ev.CN, ev.Tags[0], ev.Tags[1])
		}
		if events == enough {
			stop() // graceful drain: end the stream, flush in-flight tuples
		}
	}
	stop() // in case the feed ended before `enough` events
	res := h.Wait()
	fmt.Printf("\nstream drained after %d docs: %d events on the feed (%d rising)\n\n",
		res.DocsProcessed, events, rising)

	// The final ranking over the last scored period, from the cached
	// snapshot.
	srv.RefreshNow()
	tr, err := http.Get(base + "/trends?k=5")
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Body.Close()
	var trends struct {
		LatestPeriod int64 `json:"latest_period"`
		Top          []struct {
			Tags      []string `json:"tags"`
			Predicted float64  `json:"predicted"`
			Observed  float64  `json:"observed"`
			Score     float64  `json:"score"`
		} `json:"top"`
		Tracked int `json:"tracked"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&trends); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top trends of period %d (%d tagsets tracked):\n", trends.LatestPeriod, trends.Tracked)
	for _, e := range trends.Top {
		fmt.Printf("  score=%.3f (%.3f→%.3f)  %s\n",
			e.Score, e.Predicted, e.Observed, "#"+strings.Join(e.Tags, " ~ #"))
	}
	httpSrv.Close()
}
