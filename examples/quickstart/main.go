// Quickstart: run the full distributed tag-correlation pipeline on a short
// synthetic Twitter-like stream and print the strongest correlations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/tagset"
	"repro/internal/twitgen"
)

func main() {
	// A synthetic stream calibrated to Twitter's published statistics:
	// Zipf tag counts, topic-clustered hashtags, content drift.
	dict := tagset.NewDictionary()
	gen, err := twitgen.New(twitgen.Default(), dict)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's default setting: 10 Calculators, 10 Partitioners,
	// Disjoint Sets partitioning, repartition threshold 0.5.
	cfg := core.DefaultConfig()
	cfg.Algorithm = partition.DS

	// Stream 15 virtual minutes (the first 5 minutes fill the partitioning
	// window before the topology starts disseminating).
	const docs = 15 * 60 * 65 // 65 tagged tweets/s
	pipe, err := core.NewPipeline(cfg, core.GeneratorSource(gen.Next, docs))
	if err != nil {
		log.Fatal(err)
	}
	res := pipe.Run()

	fmt.Printf("processed %d tagged documents (%d before first partitions)\n",
		res.DocsProcessed, res.DocsBeforeInstall)
	fmt.Printf("communication: %.3f notifications per document (1.0 = no redundancy)\n",
		res.Communication)
	fmt.Printf("load Gini: %.3f across %d calculators\n", res.LoadGini, cfg.K)
	fmt.Printf("repartitions: %d, single additions: %d\n\n",
		res.Repartitions, res.SingleAdditions)

	// Print the ten strongest pairwise correlations with enough support.
	fmt.Println("top correlated tag pairs (J = |docs with all| / |docs with any|):")
	shown := 0
	for _, c := range res.Coefficients {
		if c.Tags.Len() != 2 || c.CN < 25 {
			continue
		}
		names := dict.Strings(c.Tags)
		fmt.Printf("  J=%.3f  n=%-4d  #%s ~ #%s\n", c.J, c.CN, names[0], names[1])
		if shown++; shown == 10 {
			break
		}
	}
}
