// Dynamics: watch the Section 7 machinery react to a topic burst. Midway
// through the stream a brand-new topic surges; its unseen tag combinations
// force Single Additions, partition quality degrades, and the Disseminator
// triggers repartitions.
//
//	go run ./examples/dynamics
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/twitgen"
)

func main() {
	dict := tagset.NewDictionary()
	calm := twitgen.Default()
	calm.DriftInterval = 0 // no background drift: isolate the burst
	calm.NewTagProb = 0.002
	gen, err := twitgen.New(calm, dict)
	if err != nil {
		log.Fatal(err)
	}

	// Burst vocabulary: 30 fresh tags never seen by the generator.
	burst := make([]tagset.Tag, 30)
	for i := range burst {
		burst[i] = dict.Intern(fmt.Sprintf("breaking_%d", i))
	}

	const (
		totalMin = 25
		burstAt  = stream.Millis(10 * 60 * 1000)
	)
	var id uint64
	next := func() stream.Document {
		d := gen.Next()
		id++
		// During the burst, every 3rd tweet is about the breaking topic.
		if d.Time >= burstAt && id%3 == 0 {
			a, b := burst[id%30], burst[(id*7+3)%30]
			d.Tags = tagset.New(a, b, burst[(id*13+5)%30])
		}
		return d
	}

	cfg := core.DefaultConfig()
	cfg.Algorithm = partition.DS
	pipe, err := core.NewPipeline(cfg, core.GeneratorSource(next, totalMin*60*65))
	if err != nil {
		log.Fatal(err)
	}
	res := pipe.Run()

	fmt.Printf("stream: %d docs over %d virtual minutes; burst begins at minute %d\n\n",
		res.DocsProcessed, totalMin, int(burstAt/60000))
	fmt.Printf("single additions requested: %d\n", res.SingleAdditions)
	fmt.Printf("repartitions: %d (communication=%d, load=%d, both=%d)\n",
		res.Repartitions, res.RepartitionsComm, res.RepartitionsLoad, res.RepartitionsBoth)
	fmt.Printf("uncovered document sightings: %d\n\n", res.UncoveredDocs)

	fmt.Println("communication over time (repartitions marked |):")
	marks := res.Dissem.CommSeries.Marks
	mi := 0
	for _, pt := range res.Dissem.CommSeries.Points {
		for mi < len(marks) && marks[mi] <= pt.X {
			fmt.Printf("  %7.0fk | repartition\n", marks[mi]/1000)
			mi++
		}
		bar := int(40 * (pt.Y - 1))
		if bar < 0 {
			bar = 0
		}
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("  %7.0fk %s %.3f\n", pt.X/1000, dots(bar), pt.Y)
	}

	// Confirm the burst pairs got coefficients after their Single Addition.
	found := 0
	for _, c := range res.Coefficients {
		if c.Tags.Len() >= 2 && dict.String(c.Tags[0])[:2] == "br" {
			found++
		}
	}
	fmt.Printf("\nburst tagsets with reported coefficients: %d\n", found)
}

func dots(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '*'
	}
	return string(b)
}
