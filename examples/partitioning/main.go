// Partitioning: compare the paper's four partitioning algorithms offline on
// one window of data — the communication / load-balance trade-off of
// Section 4, plus the DS+split hybrid of Section 8.3.
//
//	go run ./examples/partitioning
package main

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/stream"
	"repro/internal/tagset"
	"repro/internal/twitgen"
)

func main() {
	// Collect one 5-minute window of synthetic tweets.
	gen, err := twitgen.New(twitgen.Default(), tagset.NewDictionary())
	if err != nil {
		log.Fatal(err)
	}
	win := stream.NewSlidingWindow(stream.Minutes(5))
	for {
		d := gen.Next()
		if d.Time >= stream.Minutes(5) {
			break
		}
		win.Add(d)
	}
	snap := win.Snapshot()
	comps := graph.Components(snap)
	fmt.Printf("window: %d documents, %d distinct tagsets, %d connected components\n",
		win.Len(), win.DistinctTagsets(), len(comps))
	fmt.Printf("largest component: %d tags, load %d\n\n", comps[0].Tags.Len(), comps[0].Load)

	const k = 10
	fmt.Printf("%-9s %-12s %-8s %-9s %-10s %s\n",
		"algorithm", "replication", "avgCom", "maxLoad", "load Gini", "covered")
	for _, alg := range []partition.Algorithm{
		partition.DS, partition.SCI, partition.SCC, partition.SCL, partition.DSHybrid,
	} {
		res, err := partition.Build(snap, partition.Options{Algorithm: alg, K: k, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		q := partition.Evaluate(res, snap)
		fmt.Printf("%-9s %-12.3f %-8.3f %-9.3f %-10.3f %.1f%%\n",
			alg, res.Replication(), q.AvgCom, q.MaxLoad, q.Gini, 100*q.Coverage)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  replication 1.0 = each tag on exactly one node (DS's guarantee)")
	fmt.Println("  avgCom      = partitions touched per tagset (communication cost)")
	fmt.Println("  load Gini   = 0 is perfectly balanced (SCL's objective)")
}
